// Command sploadgen drives load against a running spserve instance and
// reports the serving layer's user-facing numbers: QPS and latency
// percentiles (p50/p90/p95/p99), overall and per operation.
//
// It runs closed-loop workers (-c): each issues one query, waits for the
// answer, and immediately issues the next, until -duration elapses. Queries
// are generated from the server's /v1/schema — real dimension values, so
// point queries actually hit groups — with key popularity drawn zipf
// (default; hot keys exercise the result cache and single-flight path) or
// uniform (exercises the batcher and index), and the operation mix set by
// -mix weights.
//
//	sploadgen -target http://localhost:8080 -duration 5s -c 32
//	sploadgen -target http://localhost:8080 -dist uniform -mix point=1
//	sploadgen -target http://localhost:8080 -out latency.json -min-qps 100
//	sploadgen -validate latency.json
//
// -out writes a versioned latency JSON document (bench.LatencyDoc);
// -validate checks one and exits. -min-qps makes the run fail (exit 1) when
// the measured throughput falls below the bound — the CI smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spcube/spcube/internal/bench"
	"github.com/spcube/spcube/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one sploadgen invocation; main minus the process exit, so
// tests can drive the full CLI surface.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sploadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "http://localhost:8080", "spserve base URL")
		duration = fs.Duration("duration", 5*time.Second, "how long to drive load")
		workers  = fs.Int("c", 16, "closed-loop worker (connection) count")
		dist     = fs.String("dist", "zipf", "key popularity: zipf or uniform")
		zipfS    = fs.Float64("zipf-s", 1.2, "zipf exponent (>1; higher = hotter keys)")
		seed     = fs.Int64("seed", 1, "query-generation seed")
		mix      = fs.String("mix", "point=8,slice=1,rollup=1,topk=1", "op weights, comma-separated op=weight")
		topK     = fs.Int("k", 5, "k for generated top-k queries")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		out      = fs.String("out", "", "write the latency document (versioned JSON) to this file")
		minQPS   = fs.Float64("min-qps", 0, "fail (exit 1) when measured QPS falls below this")
		validate = fs.String("validate", "", "validate a latency JSON document and exit (no load is run)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := bench.ValidateLatencyJSON(data); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: valid latency document (schema version %d)\n", *validate, bench.LatencySchemaVersion)
		return 0
	}

	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(stderr, "sploadgen:", err)
		return 2
	}
	if *dist != "zipf" && *dist != "uniform" {
		fmt.Fprintf(stderr, "sploadgen: unknown distribution %q (want zipf or uniform)\n", *dist)
		return 2
	}
	if *workers < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "sploadgen: need -c >= 1 and -duration > 0")
		return 2
	}

	doc, err := drive(loadConfig{
		target: strings.TrimRight(*target, "/"), duration: *duration,
		workers: *workers, dist: *dist, zipfS: *zipfS, seed: *seed,
		weights: weights, topK: *topK, timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sploadgen:", err)
		return 1
	}

	fmt.Fprintf(stdout,
		"sploadgen: %d requests in %.2fs (%.0f QPS, %d errors) | p50 %.3fms p90 %.3fms p95 %.3fms p99 %.3fms max %.3fms\n",
		doc.Requests, doc.DurationSeconds, doc.QPS, doc.Errors,
		doc.Latency.P50, doc.Latency.P90, doc.Latency.P95, doc.Latency.P99, doc.Latency.Max)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "sploadgen:", err)
			return 1
		}
		werr := bench.WriteLatencyDoc(f, doc)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "sploadgen:", werr)
			return 1
		}
	}
	if doc.Requests == 0 {
		fmt.Fprintln(stderr, "sploadgen: no request completed")
		return 1
	}
	if *minQPS > 0 && doc.QPS < *minQPS {
		fmt.Fprintf(stderr, "sploadgen: measured %.0f QPS below required %.0f\n", doc.QPS, *minQPS)
		return 1
	}
	return 0
}

// parseMix parses "point=8,slice=1,..." into per-op weights.
func parseMix(s string) (map[string]int, error) {
	weights := make(map[string]int)
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		if _, err := serve.OpByName(op); err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		weights[op] = n
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	return weights, nil
}

// loadConfig carries one run's parameters.
type loadConfig struct {
	target   string
	duration time.Duration
	workers  int
	dist     string
	zipfS    float64
	seed     int64
	weights  map[string]int
	topK     int
	timeout  time.Duration
}

// sample is one completed request.
type sample struct {
	op      string
	latency time.Duration
	err     bool
}

// drive fetches the schema, runs the closed-loop workers, and aggregates
// the measurements into a latency document.
func drive(cfg loadConfig) (*bench.LatencyDoc, error) {
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
	}
	schema, err := fetchSchema(client, cfg.target)
	if err != nil {
		return nil, err
	}
	if len(schema.Dims) == 0 {
		return nil, fmt.Errorf("target serves no dimensions")
	}

	results := make([][]sample, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := newQueryGen(schema, cfg, cfg.seed+int64(w)*7919)
			var local []sample
			for time.Now().Before(deadline) {
				req := gen.next()
				t0 := time.Now()
				ok := post(client, cfg.target+"/v1/query", req)
				local = append(local, sample{op: req.Op, latency: time.Since(t0), err: !ok})
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := bench.NewLatencyDoc(cfg.target)
	doc.DurationSeconds = elapsed.Seconds()
	doc.Concurrency = cfg.workers
	doc.Distribution = cfg.dist
	doc.Seed = cfg.seed

	var all []time.Duration
	perOp := make(map[string][]time.Duration)
	perOpErr := make(map[string]int64)
	for _, local := range results {
		for _, s := range local {
			doc.Requests++
			if s.err {
				doc.Errors++
				perOpErr[s.op]++
				continue
			}
			all = append(all, s.latency)
			perOp[s.op] = append(perOp[s.op], s.latency)
		}
	}
	doc.QPS = float64(doc.Requests-doc.Errors) / elapsed.Seconds()
	doc.Latency = bench.Percentiles(all)
	for op := range cfg.weights {
		doc.Ops[op] = bench.OpLatency{
			Requests: int64(len(perOp[op])) + perOpErr[op],
			Errors:   perOpErr[op],
			Latency:  bench.Percentiles(perOp[op]),
		}
	}
	return doc, nil
}

// fetchSchema reads the served cube's shape.
func fetchSchema(client *http.Client, target string) (*serve.SchemaDoc, error) {
	resp, err := client.Get(target + "/v1/schema")
	if err != nil {
		return nil, fmt.Errorf("fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching schema: %s", resp.Status)
	}
	var doc serve.SchemaDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding schema: %w", err)
	}
	return &doc, nil
}

// post issues one query, reporting success (HTTP 200 and a decodable
// answer).
func post(client *http.Client, url string, req serve.QueryRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var ans serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK && ans.Error == ""
}

// queryGen deterministically generates the query stream of one worker.
type queryGen struct {
	schema *serve.SchemaDoc
	cfg    loadConfig
	rng    *rand.Rand
	zipf   []*rand.Zipf // per dimension, nil for dims with no served values
	ops    []string     // op name repeated by weight, drawn uniformly
}

func newQueryGen(schema *serve.SchemaDoc, cfg loadConfig, seed int64) *queryGen {
	g := &queryGen{schema: schema, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	for _, dim := range schema.Dims {
		if len(dim.Values) == 0 {
			g.zipf = append(g.zipf, nil)
			continue
		}
		g.zipf = append(g.zipf, rand.NewZipf(g.rng, cfg.zipfS, 1, uint64(len(dim.Values)-1)))
	}
	for op, w := range cfg.weights {
		for i := 0; i < w; i++ {
			g.ops = append(g.ops, op)
		}
	}
	// Deterministic draw order regardless of map iteration.
	sort.Strings(g.ops)
	return g
}

// value draws a value index for dimension i under the configured
// distribution.
func (g *queryGen) value(i int) (string, bool) {
	vals := g.schema.Dims[i].Values
	if len(vals) == 0 {
		return "", false
	}
	if g.cfg.dist == "zipf" {
		return vals[g.zipf[i].Uint64()], true
	}
	return vals[g.rng.Intn(len(vals))], true
}

// next builds one query: a random cuboid, values drawn by popularity, the
// op by mix weight.
func (g *queryGen) next() serve.QueryRequest {
	op := g.ops[g.rng.Intn(len(g.ops))]
	d := len(g.schema.Dims)
	group := make([]string, d)
	// Draw a random non-empty cuboid (dimensions with no served values
	// stay aggregated away).
	masked := make([]int, 0, d)
	for i := range group {
		group[i] = "*"
		if g.rng.Intn(2) == 1 && len(g.schema.Dims[i].Values) > 0 {
			masked = append(masked, i)
		}
	}
	if len(masked) == 0 {
		// The apex is a fine point/rollup target but slice and top-k
		// degenerate; keep it only for point-like ops.
		if op == "slice" || op == "topk" {
			op = "point"
		}
	}
	switch op {
	case "point", "rollup":
		for _, i := range masked {
			v, _ := g.value(i)
			group[i] = v
		}
		return serve.QueryRequest{Op: op, Group: group}
	case "slice":
		// A concrete prefix of the cuboid, the rest wildcarded.
		pfx := g.rng.Intn(len(masked) + 1)
		for j, i := range masked {
			if j < pfx {
				v, _ := g.value(i)
				group[i] = v
			} else {
				group[i] = "?"
			}
		}
		return serve.QueryRequest{Op: op, Group: group}
	default: // topk
		for _, i := range masked {
			group[i] = "?"
		}
		return serve.QueryRequest{Op: op, Group: group, K: g.cfg.topK}
	}
}
