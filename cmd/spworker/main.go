// Command spworker is the execution-backend worker process for the proc
// backend (-backend=proc on spcube/spbench). One spworker runs per
// simulated failure domain: it answers the parent's attempt, storage and
// heartbeat RPCs over a unix socket, and its death — a SIGKILL delivered
// for a node-crash fault, or a real crash — makes exactly those RPCs fail,
// driving the engine's genuine recovery paths.
//
// Normally spcube and spbench re-execute themselves as workers, so this
// binary is not needed; it exists for running workers as a distinct
// executable (e.g. a minimal deployment image, or attaching tooling to the
// worker process only):
//
//	spcube -in sales.csv -backend proc -worker-cmd /path/to/spworker
//
// The socket path and node index arrive via SPCUBE_WORKER_SOCKET and
// SPCUBE_WORKER_NODE (set by the parent), or via the -socket and -node
// flags when driving a worker by hand.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spcube/spcube/internal/mr/exec"
)

func main() {
	exec.MaybeWorkerMain() // parent-spawned: env carries the identity
	socket := flag.String("socket", "", "unix socket path to listen on")
	node := flag.Int("node", 0, "failure-domain index this worker serves")
	flag.Parse()
	if *socket == "" {
		fmt.Fprintln(os.Stderr, "spworker: no socket: set -socket or SPCUBE_WORKER_SOCKET")
		os.Exit(2)
	}
	if err := exec.ServeWorker(*socket, *node); err != nil {
		fmt.Fprintf(os.Stderr, "spworker node %d: %v\n", *node, err)
		os.Exit(1)
	}
}
