// Command benchcmp compares two `go test -bench` output files and renders a
// per-benchmark old-vs-new table (ns/op, B/op, allocs/op and any custom
// metrics), aggregating repeated runs by median. It is the in-repo fallback
// for benchstat, so `make bench-compare` works on machines without network
// access to install golang.org/x/perf; CI prefers benchstat when it can be
// installed and falls back to this tool otherwise.
//
// With -json, it instead converts a single bench output file into the
// repo's BENCH_*.json baseline format (schema benchcmp/v1), the committed
// wall-clock trajectory that future perf PRs are compared against.
//
// Usage:
//
//	benchcmp old.txt new.txt
//	benchcmp -json BENCH_hotpath.json new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps a unit ("ns/op", "allocs/op", "tuples/s") to the median
// value across a benchmark's runs.
type metrics map[string]float64

// benchFile is the parsed form of one `go test -bench` output file:
// benchmark name -> unit -> median value, plus name order of first
// appearance.
type benchFile struct {
	order []string
	bench map[string]metrics
}

// parseBench parses `go test -bench` output. Lines that are not benchmark
// result lines (goos/pkg headers, PASS, ok) are ignored. Repeated runs of
// one benchmark are aggregated by median per unit.
func parseBench(r *bufio.Scanner) (*benchFile, error) {
	samples := make(map[string]map[string][]float64)
	f := &benchFile{bench: make(map[string]metrics)}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := trimCPUSuffix(fields[0])
		if _, ok := samples[name]; !ok {
			samples[name] = make(map[string][]float64)
			f.order = append(f.order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for name, units := range samples {
		m := make(metrics, len(units))
		for unit, vals := range units {
			m[unit] = median(vals)
		}
		f.bench[name] = m
	}
	return f, nil
}

// trimCPUSuffix strips the -N GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo").
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parseFile(path string) (*benchFile, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f, err := parseBench(sc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// compareUnits is the print order; other units follow alphabetically.
var compareUnits = []string{"ns/op", "B/op", "allocs/op"}

func compare(w *os.File, old, new *benchFile) {
	// Union of names, in new-file order first (the tree under test).
	seen := make(map[string]bool)
	var names []string
	for _, n := range append(append([]string{}, new.order...), old.order...) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		o, haveOld := old.bench[name]
		n, haveNew := new.bench[name]
		for _, unit := range unitsOf(o, n) {
			ov, ook := o[unit]
			nv, nok := n[unit]
			switch {
			case haveOld && haveNew && ook && nok:
				fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s\n",
					name, unit, fmtVal(ov), fmtVal(nv), fmtDelta(ov, nv, unit))
			case nok:
				fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s\n", name, unit, "-", fmtVal(nv), "new")
			case ook:
				fmt.Fprintf(w, "%-36s %-12s %14s %14s %9s\n", name, unit, fmtVal(ov), "-", "gone")
			}
		}
	}
}

// unitsOf returns the union of the two metric sets' units, stable order.
func unitsOf(a, b metrics) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range compareUnits {
		if _, ok := a[u]; ok {
			seen[u], out = true, append(out, u)
			continue
		}
		if _, ok := b[u]; ok {
			seen[u], out = true, append(out, u)
		}
	}
	var rest []string
	for u := range a {
		if !seen[u] {
			seen[u] = true
			rest = append(rest, u)
		}
	}
	for u := range b {
		if !seen[u] {
			seen[u] = true
			rest = append(rest, u)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// fmtDelta renders the relative change; for throughput units (anything
// per second) higher is better, for everything else lower is better.
func fmtDelta(old, new float64, unit string) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "+inf"
	}
	pct := (new - old) / old * 100
	return fmt.Sprintf("%+.1f%%", pct)
}

// jsonBaseline is the committed BENCH_*.json schema.
type jsonBaseline struct {
	Schema     string                        `json:"schema"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func writeJSON(path string, f *benchFile) error {
	doc := jsonBaseline{Schema: "benchcmp/v1", Benchmarks: make(map[string]map[string]float64)}
	for name, m := range f.bench {
		doc.Benchmarks[name] = m
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	jsonOut := flag.String("json", "", "write the (single) input file as a BENCH_*.json baseline to this path instead of comparing")
	flag.Parse()
	args := flag.Args()
	if *jsonOut != "" {
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchcmp -json out.json bench.txt")
			os.Exit(2)
		}
		f, err := parseFile(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		if err := writeJSON(*jsonOut, f); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	neu, err := parseFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	compare(os.Stdout, old, neu)
}
