package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/spcube/spcube/internal/mr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineHotPath 	       5	 204564034 ns/op	     39108 tuples/s	69530500 B/op	  507636 allocs/op
BenchmarkEngineHotPath 	       5	 208832306 ns/op	     38308 tuples/s	69530492 B/op	  507636 allocs/op
BenchmarkEngineHotPath 	       5	 200928438 ns/op	     39815 tuples/s	69530470 B/op	  507636 allocs/op
BenchmarkHashPartition-8 	53852214	        21.83 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/spcube/spcube/internal/mr	20.551s
`

func parse(t *testing.T, text string) *benchFile {
	t.Helper()
	f, err := parseBench(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseBenchMedianAndCPUSuffix(t *testing.T) {
	f := parse(t, sample)
	hp, ok := f.bench["BenchmarkEngineHotPath"]
	if !ok {
		t.Fatalf("missing BenchmarkEngineHotPath; parsed %v", f.order)
	}
	// Median of the three ns/op samples.
	if got, want := hp["ns/op"], 204564034.0; got != want {
		t.Errorf("ns/op median = %v, want %v", got, want)
	}
	if got, want := hp["allocs/op"], 507636.0; got != want {
		t.Errorf("allocs/op = %v, want %v", got, want)
	}
	if got, want := hp["tuples/s"], 39108.0; got != want {
		t.Errorf("tuples/s median = %v, want %v", got, want)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := f.bench["BenchmarkHashPartition"]; !ok {
		t.Errorf("CPU suffix not stripped; parsed names: %v", f.order)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":       "BenchmarkFoo",
		"BenchmarkFoo":         "BenchmarkFoo",
		"BenchmarkFoo-bar":     "BenchmarkFoo-bar",
		"BenchmarkFoo/sub-16":  "BenchmarkFoo/sub",
		"BenchmarkFoo/p-2-x-4": "BenchmarkFoo/p-2-x",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}
