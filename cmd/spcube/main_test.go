package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/mr"
)

const sampleCSV = `name,city,year,sales
laptop,Rome,2012,2000
laptop,Paris,2012,1500
printer,Rome,2013,300
laptop,Rome,2013,900
`

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: in, out: out, aggName: "sum", algName: "sp-cube", workers: 3, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "name,city,year,sum" {
		t.Errorf("header: %q", lines[0])
	}
	// The full cube of these 4 rows has 20 c-groups (1+2+2+2+3+3+3+4
	// across the 8 cuboids).
	if len(lines)-1 != 20 {
		t.Errorf("got %d groups", len(lines)-1)
	}
	found := false
	for _, l := range lines[1:] {
		if l == "laptop,*,2012,3500" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing (laptop,*,2012)=3500 in output:\n%s", data)
	}
}

func TestRunAllAlgorithmsAndMinSup(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"sp-cube", "naive", "mr-cube", "hive"} {
		out := filepath.Join(dir, algo+".csv")
		if err := run(options{in: in, out: out, aggName: "count", algName: algo, workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	out := filepath.Join(dir, "iceberg.csv")
	if err := run(options{in: in, out: out, aggName: "count", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 3, stats: false, faults: "", maxAttempts: 0}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Only groups with >= 3 rows survive: (laptop,*,*), (*,Rome,*), (*,*,*).
	if len(lines)-1 != 3 {
		t.Errorf("iceberg output has %d groups, want 3:\n%s", len(lines)-1, data)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")

	if err := run(options{in: in, out: "", aggName: "count", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("missing input must fail")
	}
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: in, out: "", aggName: "median", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("unknown aggregate must fail")
	}
	if err := run(options{in: in, out: "", aggName: "count", algName: "spark", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("unknown algorithm must fail")
	}

	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b,m\nx,y,notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: bad, out: "", aggName: "count", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("non-numeric measure must fail")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("a,b,m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: empty, out: "", aggName: "count", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("headerless/empty data must fail")
	}
	oneCol := filepath.Join(dir, "one.csv")
	if err := os.WriteFile(oneCol, []byte("m\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: oneCol, out: "", aggName: "count", algName: "sp-cube", workers: 2, par: 0, seed: 1, minSup: 0, stats: false, faults: "", maxAttempts: 0}, io.Discard); err == nil {
		t.Error("single-column input must fail")
	}
}

func TestRunTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	err := run(options{in: in, out: filepath.Join(dir, "out.csv"), aggName: "count", algName: "sp-cube",
		workers: 2, seed: 1, traceFile: trace, metricsFile: metrics}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(traceData)), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace has %d events, want at least round-start/task/round-end per round", len(lines))
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", i, err)
		}
		if _, ok := ev["type"].(string); !ok {
			t.Fatalf("trace line %d lacks a type: %s", i, line)
		}
	}

	metricsData, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(metricsData, &doc); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	if v, ok := doc["schemaVersion"].(float64); !ok || int(v) != mr.MetricsSchemaVersion {
		t.Errorf("metrics schemaVersion = %v, want %d", doc["schemaVersion"], mr.MetricsSchemaVersion)
	}
	if rounds, ok := doc["rounds"].([]any); !ok || len(rounds) != 2 {
		t.Errorf("sp-cube metrics should have 2 rounds, got %v", doc["rounds"])
	}
}

// TestRunNodeCrashAndSpeculationStats drives the recovery machinery through
// the CLI: a node-crash plan must surface map re-executions in both the
// stats line and the metrics document without changing the cube, and a
// slow-task plan with -spec-slack must surface speculative attempts.
func TestRunNodeCrashAndSpeculationStats(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	clean := filepath.Join(dir, "clean.csv")
	if err := run(options{in: in, out: clean, aggName: "count", algName: "sp-cube",
		workers: 2, seed: 1, stats: false}, io.Discard); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		opts    options
		stats   string // substring the stats line must contain
		counter string // metrics-document counter that must be positive
	}{
		{"node crash", options{faults: "*:node:1:node-crash"},
			"map re-executions", "mapReexecutions"},
		{"speculation", options{faults: "*:map:*:slow@3", specSlack: 0.0005},
			"speculative attempts", "speculativeLaunched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			o.in, o.out = in, filepath.Join(dir, tc.name+".csv")
			o.aggName, o.algName = "count", "sp-cube"
			o.workers, o.seed, o.stats = 2, 1, true
			o.metricsFile = filepath.Join(dir, tc.name+".json")
			var stderr strings.Builder
			if err := run(o, &stderr); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(stderr.String(), tc.stats) {
				t.Errorf("stats line %q lacks %q", stderr.String(), tc.stats)
			}
			got, err := os.ReadFile(o.out)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("cube under %s differs from the fault-free run", tc.name)
			}
			metricsData, err := os.ReadFile(o.metricsFile)
			if err != nil {
				t.Fatal(err)
			}
			var doc map[string]any
			if err := json.Unmarshal(metricsData, &doc); err != nil {
				t.Fatal(err)
			}
			if v, _ := doc[tc.counter].(float64); v <= 0 {
				t.Errorf("metrics %s = %v, want > 0", tc.counter, doc[tc.counter])
			}
		})
	}
}

// writeTemp writes content to a fresh file under dir and returns its path.
func writeTemp(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// cubeLines runs the CLI with the given options and returns the output CSV's
// header plus the body rows as a set (delta mode and plain mode may order
// cuboids identically, but the set comparison keeps the test format-agnostic).
func cubeLines(t *testing.T, o options) (string, map[string]bool) {
	t.Helper()
	dir := t.TempDir()
	o.out = filepath.Join(dir, "out.csv")
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	set := make(map[string]bool, len(lines)-1)
	for _, l := range lines[1:] {
		set[l] = true
	}
	return lines[0], set
}

// TestRunDeltaAppendAndDelete drives the incremental-maintenance batch mode
// end to end: the maintained cube emitted by `-delta`/`-delta-delete` must
// equal a from-scratch run over the edited relation, and the stats line must
// report the maintenance cycle.
func TestRunDeltaAppendAndDelete(t *testing.T) {
	dir := t.TempDir()
	base := writeTemp(t, dir, "base.csv", sampleCSV)
	appendCSV := "name,city,year,sales\nlaptop,Berlin,2013,700\nprinter,Paris,2012,100\n"
	deleteCSV := "name,city,year,sales\nprinter,Rome,2013,300\n"
	deltaF := writeTemp(t, dir, "delta.csv", appendCSV)
	delF := writeTemp(t, dir, "del.csv", deleteCSV)

	// The edited relation: base minus the deleted row plus the two appends.
	edited := `name,city,year,sales
laptop,Rome,2012,2000
laptop,Paris,2012,1500
laptop,Rome,2013,900
laptop,Berlin,2013,700
printer,Paris,2012,100
`
	editedF := writeTemp(t, dir, "edited.csv", edited)

	for _, aggName := range []string{"count", "sum"} {
		o := options{aggName: aggName, algName: "sp-cube", workers: 3, seed: 1}
		wo := o
		wo.in = editedF
		wantHeader, want := cubeLines(t, wo)

		var stderr strings.Builder
		g := o
		g.in = base
		g.deltaFile = deltaF
		g.deltaDeleteFile = delF
		g.stats = true
		g.out = filepath.Join(dir, aggName+".csv")
		if err := run(g, &stderr); err != nil {
			t.Fatalf("%s: delta run: %v", aggName, err)
		}
		data, err := os.ReadFile(g.out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if lines[0] != wantHeader {
			t.Errorf("%s: header %q, want %q", aggName, lines[0], wantHeader)
		}
		got := make(map[string]bool, len(lines)-1)
		for _, l := range lines[1:] {
			got[l] = true
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d groups, want %d", aggName, len(got), len(want))
		}
		for l := range want {
			if !got[l] {
				t.Errorf("%s: maintained cube is missing %q", aggName, l)
			}
		}
		st := stderr.String()
		if !strings.Contains(st, "cycle 1") || !strings.Contains(st, "drift") {
			t.Errorf("%s: stats line does not report the maintenance cycle: %q", aggName, st)
		}
		// sum supports deletes via inversion, so the batch must have gone
		// through the delta path, not a rebuild.
		if aggName == "sum" && !strings.Contains(st, "cycle 1 delta") {
			t.Errorf("sum: expected a delta-mode cycle, stats: %q", st)
		}
	}
}

// TestRunDeltaRebuildAndMetrics checks the forced-rebuild escape hatch and
// that a maintenance run's metrics document is schema v3 with per-round
// maintenance annotations.
func TestRunDeltaRebuildAndMetrics(t *testing.T) {
	dir := t.TempDir()
	base := writeTemp(t, dir, "base.csv", sampleCSV)
	deltaF := writeTemp(t, dir, "delta.csv", "name,city,year,sales\nlaptop,Oslo,2014,50\n")
	metrics := filepath.Join(dir, "metrics.json")

	var stderr strings.Builder
	o := options{in: base, aggName: "count", algName: "sp-cube", workers: 2, seed: 1,
		deltaFile: deltaF, rebuildThr: -1, stats: true, metricsFile: metrics,
		out: filepath.Join(dir, "out.csv")}
	if err := run(o, &stderr); err != nil {
		t.Fatal(err)
	}
	if st := stderr.String(); !strings.Contains(st, "rebuild") || !strings.Contains(st, "forced") {
		t.Errorf("stats line does not report the forced rebuild: %q", st)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if v, ok := doc["schemaVersion"].(float64); !ok || int(v) != mr.MetricsSchemaVersion {
		t.Errorf("maintenance metrics schemaVersion = %v, want %d", doc["schemaVersion"], mr.MetricsSchemaVersion)
	}
	rounds, _ := doc["rounds"].([]any)
	foundMaint := false
	for _, r := range rounds {
		if m, ok := r.(map[string]any); ok && m["maint"] != nil {
			foundMaint = true
		}
	}
	if !foundMaint {
		t.Errorf("no round carries a maint annotation:\n%s", data)
	}
}

// TestRunDeltaErrors exercises the batch-mode input validation.
func TestRunDeltaErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeTemp(t, dir, "base.csv", sampleCSV)
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"no base input",
			options{aggName: "count", algName: "sp-cube", workers: 2,
				deltaFile: writeTemp(t, dir, "d1.csv", "name,city,year,sales\na,b,2000,1\n")},
			"-in"},
		{"mismatched header",
			options{in: base, aggName: "count", algName: "sp-cube", workers: 2,
				deltaFile: writeTemp(t, dir, "d2.csv", "name,town,year,sales\na,b,2000,1\n")},
			"town"},
		{"wrong column count",
			options{in: base, aggName: "count", algName: "sp-cube", workers: 2,
				deltaFile: writeTemp(t, dir, "d3.csv", "name,sales\na,1\n")},
			"columns"},
		{"bad measure",
			options{in: base, aggName: "count", algName: "sp-cube", workers: 2,
				deltaFile: writeTemp(t, dir, "d4.csv", "name,city,year,sales\na,b,2000,many\n")},
			"integer"},
		{"unknown delete",
			options{in: base, aggName: "count", algName: "sp-cube", workers: 2,
				deltaDeleteFile: writeTemp(t, dir, "d5.csv", "name,city,year,sales\ntablet,Rome,2012,1\n")},
			""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.o, io.Discard)
			if err == nil {
				t.Fatal("accepted")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestSpillBudgetEndToEnd: a forced-spill run must produce the same cube as
// the in-memory run and leave the spill directory empty.
func TestSpillBudgetEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	memOut := filepath.Join(dir, "mem.csv")
	if err := run(options{in: in, out: memOut, aggName: "sum", algName: "sp-cube", workers: 3, seed: 1}, io.Discard); err != nil {
		t.Fatal(err)
	}
	spillDir := filepath.Join(dir, "spill")
	if err := os.Mkdir(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spillOut := filepath.Join(dir, "spill.csv")
	if err := run(options{in: in, out: spillOut, aggName: "sum", algName: "sp-cube", workers: 3, seed: 1,
		spillBudget: 1, spillDir: spillDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	mem, _ := os.ReadFile(memOut)
	spill, _ := os.ReadFile(spillOut)
	if string(mem) != string(spill) {
		t.Errorf("spilled cube differs from in-memory cube:\n%s\nvs\n%s", spill, mem)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not empty after run: %v", ents)
	}
}

// TestExitCodes pins the error classification: usage errors (bad flag
// values) exit 2, runtime failures exit 1 — and both flow through run's
// error return so deferred cleanup executes.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unknown aggregate: usage error, exit 2.
	err := run(options{in: in, aggName: "bogus", algName: "sp-cube", workers: 2}, io.Discard)
	if err == nil || exitCode(err) != 2 {
		t.Errorf("unknown agg: err=%v exit=%d, want exit 2", err, exitCode(err))
	}
	// -delta without -in: usage error, exit 2.
	err = run(options{aggName: "count", algName: "sp-cube", workers: 2, deltaFile: in}, io.Discard)
	if err == nil || exitCode(err) != 2 {
		t.Errorf("delta without -in: err=%v exit=%d, want exit 2", err, exitCode(err))
	}
	// Missing input file: runtime error, exit 1.
	err = run(options{in: filepath.Join(dir, "missing.csv"), aggName: "count", algName: "sp-cube", workers: 2}, io.Discard)
	if err == nil || exitCode(err) != 1 {
		t.Errorf("missing input: err=%v exit=%d, want exit 1", err, exitCode(err))
	}
}

// TestFailedRunLeavesNoSpillFiles: a run that dies mid-computation (a
// permanent injected fault) must still remove every spill temp file — the
// cleanup is deferred inside run, not skipped by the error exit.
func TestFailedRunLeavesNoSpillFiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	spillDir := filepath.Join(dir, "spill")
	if err := os.Mkdir(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}
	err := run(options{in: in, out: filepath.Join(dir, "out.csv"), aggName: "count", algName: "sp-cube",
		workers: 2, spillBudget: 1, spillDir: spillDir,
		faults: "*:map:*:crash:*", maxAttempts: 1}, io.Discard)
	if err == nil {
		t.Fatal("expected the permanently faulted run to fail")
	}
	if exitCode(err) != 1 {
		t.Errorf("compute failure exit = %d, want 1", exitCode(err))
	}
	ents, rerr := os.ReadDir(spillDir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 0 {
		t.Errorf("failed run left spill files: %v", ents)
	}
}
