// Command spcube computes the data cube of a CSV file.
//
// The input's header row names the columns; every column except the last is
// a dimension and the last column is the numeric measure. The cube is
// written as CSV (one row per c-group, "*" in aggregated-away dimensions)
// to -o or stdout, and execution statistics go to stderr.
//
// Usage:
//
//	spcube -in sales.csv -agg sum -algo sp-cube -k 8 -o cube.csv
//	gendata -dataset retail -n 100000 | spcube -agg count
//	spcube -in sales.csv -p 1         # sequential task execution, same cube
//
// The -p flag controls how many goroutines execute the simulated map and
// reduce tasks (0 = all cores). It changes only real wall-clock time: the
// cube and all simulated statistics are identical at any parallelism.
//
// The -faults flag injects deterministic task failures into the simulated
// cluster (spec: round:phase:task:kind[:attempt[:count]], comma-separated,
// "*" wildcards; kinds: crash, mid-emit, slow, oom, plus
// round:node:N:node-crash to kill simulated machine N at a round's shuffle
// barrier — its completed map output is lost and recomputed). Failed tasks
// are re-executed up to -max-attempts times; the cube and every statistic
// except the recovery counters are identical to a fault-free run:
//
//	spcube -in sales.csv -faults '*:map:*:crash'      # every map task retried once
//	spcube -in sales.csv -faults '*:node:1:node-crash' # lose node 1's map output
//
// Straggler mitigation: -spec-slack S races a backup attempt against any
// task stalled (by a slow fault) more than S simulated seconds, keeping the
// attempt with the lower simulated finish time; -task-timeout T kills and
// retries attempts stalled past T simulated seconds:
//
//	spcube -in sales.csv -faults '*:map:2:slow@40' -spec-slack 0.01
//
// Out-of-core shuffle: -spill-budget N caps each map task's in-memory emit
// buffer at N bytes — past the budget the task sorts and flushes its output
// to a compact on-disk run file, and reducers stream a k-way merge over the
// runs, so reduce memory is bounded by the run count rather than the input
// size. -spill-budget 0 spills every record, -1 (the default) never spills;
// the cube is byte-identical at any setting. -spill-dir picks where the
// per-run temp directory is created (default: the system temp dir); it is
// removed on exit even when the run fails:
//
//	spcube -in big.csv -spill-budget 8388608    # spill past 8 MiB per task
//	spcube -in big.csv -spill-budget 0 -spill-dir /mnt/scratch
//
// -spill-codec picks the block compression for run files ("raw" or "lz");
// -merge-fan-in caps how many runs a reducer merges at once (the analog of
// Hadoop's io.sort.factor) — past the cap, contiguous groups are first
// merged into intermediate on-disk runs. The cube is byte-identical under
// any codec and fan-in. The spill directory honors $TMPDIR when -spill-dir
// is unset, and an interrupt (SIGINT/SIGTERM) removes it before exiting:
//
//	spcube -in big.csv -spill-budget 65536 -spill-codec lz
//	spcube -in big.csv -spill-budget 1024 -merge-fan-in 8
//
// Execution backends: -backend local (the default) executes the simulated
// cluster's tasks as goroutines inside this process; -backend proc runs
// one real worker process per simulated node — spawned by re-executing
// this binary (override with -worker-cmd, e.g. a cmd/spworker build) —
// with heartbeat liveness, RPC deadlines and crash recovery that SIGKILLs
// and respawns actual OS processes. A node-crash fault under proc kills a
// real process. The cube and all simulated statistics are byte-identical
// across backends; only the health counters (heartbeat misses, worker
// restarts, RPC retries) and wall-clock time differ:
//
//	spcube -in sales.csv -backend proc
//	spcube -in sales.csv -backend proc -faults '*:node:1:node-crash'  # real SIGKILL
//
// Observability: -trace FILE streams the simulated cluster's structured
// lifecycle events as JSON lines, -metrics-out FILE writes the run's full
// per-round metrics as a versioned JSON document, and -pprof ADDR serves
// net/http/pprof and runtime metrics for the process itself:
//
//	spcube -in sales.csv -trace trace.jsonl -metrics-out metrics.json
//	spcube -in big.csv -pprof localhost:6060 &
//
// Incremental maintenance: -delta FILE applies the rows of FILE (same CSV
// shape as the base input) as an append batch AFTER the initial cube is
// built, through the delta-cube maintenance layer — a small cube job over
// the batch merged into the base cube, or a full rebuild when the batch's
// SP-Sketch drift exceeds -rebuild-threshold. -delta-delete FILE deletes its
// rows instead (they must exist in the base input). The emitted cube is the
// maintained (post-batch) cube and the stats line reports the chosen mode
// and measured drift:
//
//	spcube -in sales.csv -delta monday.csv -o cube.csv
//	spcube -in sales.csv -delta-delete returns.csv -rebuild-threshold 0.3
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/spcube/spcube"
	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/cleanup"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/delta"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/mr/exec"
	"github.com/spcube/spcube/internal/obs"
	"github.com/spcube/spcube/internal/relation"
)

// Exit codes: 0 on success, 1 on runtime errors (I/O, compute), 2 on usage
// errors (unknown flag values, contradictory options) — matching the code
// flag.ExitOnError uses for malformed flags. All error paths return through
// run so deferred cleanup (output flush, trace close, pprof shutdown, spill
// temp removal) always executes before the process exits.
func main() {
	exec.MaybeWorkerMain() // proc-backend workers: spcube re-executes itself
	os.Exit(realMain())
}

func realMain() int {
	var o options
	flag.StringVar(&o.in, "in", "", "input CSV path (default stdin)")
	flag.StringVar(&o.out, "o", "", "output CSV path (default stdout)")
	flag.StringVar(&o.aggName, "agg", "count", "aggregate function: count, sum, min, max, avg, var, stddev, distinct")
	flag.StringVar(&o.algName, "algo", "sp-cube", "algorithm: sp-cube, naive, mr-cube, hive, pipesort")
	flag.IntVar(&o.workers, "k", 8, "simulated cluster size")
	flag.IntVar(&o.par, "p", 0, "goroutines executing simulated tasks: 0 = all cores, 1 = sequential (results are identical at any setting)")
	flag.Int64Var(&o.seed, "seed", 1, "sampling seed")
	flag.IntVar(&o.minSup, "minsup", 0, "iceberg threshold: only materialize groups with at least this many rows")
	flag.BoolVar(&o.stats, "stats", true, "print execution statistics to stderr")
	flag.StringVar(&o.faults, "faults", "", "fault-injection spec: round:phase:task:kind[:attempt[:count]] or round:node:N:node-crash, comma-separated (e.g. '*:map:*:crash', '*:node:1:node-crash'); the cube is identical to a fault-free run")
	flag.IntVar(&o.maxAttempts, "max-attempts", 0, "task attempts before an injected failure becomes permanent (0 = engine default, 4)")
	flag.Float64Var(&o.specSlack, "spec-slack", 0, "speculative-execution slack in simulated seconds: race a backup attempt against tasks stalled longer than this (0 = disabled)")
	flag.Float64Var(&o.taskTimeout, "task-timeout", 0, "kill and retry task attempts stalled longer than this many simulated seconds (0 = disabled)")
	flag.StringVar(&o.traceFile, "trace", "", "write structured engine trace events (JSON lines) to this file")
	flag.StringVar(&o.metricsFile, "metrics-out", "", "write the run's per-round metrics (versioned JSON) to this file")
	flag.StringVar(&o.deltaFile, "delta", "", "CSV of rows to append as an incremental-maintenance batch after the initial build")
	flag.StringVar(&o.deltaDeleteFile, "delta-delete", "", "CSV of rows to delete as part of the maintenance batch (rows must exist in the base input)")
	flag.Float64Var(&o.rebuildThr, "rebuild-threshold", 0, "sketch-drift level above which the batch is applied by full rebuild (0 = default, negative = always rebuild)")
	flag.Int64Var(&o.spillBudget, "spill-budget", -1, "map-side in-memory emit budget in bytes before sorting and spilling to an on-disk run file: -1 = never spill (default), 0 = spill every record, N > 0 = spill past N bytes; the cube is identical at any setting")
	flag.StringVar(&o.spillDir, "spill-dir", "", "directory for spill run files (default: the system temp dir, honoring $TMPDIR); a per-run subdirectory is created and removed on exit, interrupts included")
	flag.StringVar(&o.spillCodec, "spill-codec", "raw", "block compression codec for spill run files: raw or lz; the cube is identical under any codec")
	flag.IntVar(&o.mergeFanIn, "merge-fan-in", 0, "cap on runs merged at once by a reducer (0 = engine default, 64; minimum 2); excess runs are first merged into intermediate on-disk runs")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and /debug/runtime on this address (e.g. localhost:6060)")
	flag.StringVar(&o.backend, "backend", "local", "execution backend: local (simulated nodes are goroutines) or proc (one real worker process per node, with heartbeats, RPC deadlines and crash recovery); the cube is byte-identical across backends")
	flag.StringVar(&o.workerCmd, "worker-cmd", "", "worker argv for -backend proc, space-separated (default: this binary re-executes itself; cmd/spworker is a standalone alternative)")
	flag.Parse()

	// Map the flag's surface to the engine's: -1 = never spill (engine 0),
	// 0 = spill every record (engine budget of one byte — any emit exceeds
	// it). Inside options, spillBudget always carries the engine value, so
	// the zero value means "disabled".
	switch {
	case o.spillBudget < -1:
		fmt.Fprintf(os.Stderr, "spcube: -spill-budget %d: want -1 (never), 0 (every record) or a positive byte count\n", o.spillBudget)
		return 2
	case o.spillBudget == -1:
		o.spillBudget = 0
	case o.spillBudget == 0:
		o.spillBudget = 1
	}

	// With spilling enabled, run files live under a CLI-owned temp root so
	// a forced exit can remove them: deferred engine cleanup never executes
	// when a signal kills the process mid-run.
	teardown := func() {}
	if o.spillBudget > 0 {
		root, err := os.MkdirTemp(o.spillDir, "spcube-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spcube:", err)
			return 1
		}
		o.spillDir = root
		defer os.RemoveAll(root)
		teardown = func() { os.RemoveAll(root) }
	}

	// Two-stage interrupt handling: the first SIGINT/SIGTERM cancels the
	// run's context — in-flight rounds stop at the next attempt boundary,
	// proc-backend workers are reaped, deferred cleanup runs — and a second
	// signal forces the teardown-and-exit path.
	ctx, stopSig := cleanup.NotifyContext(context.Background(), teardown, os.Exit)
	defer stopSig()
	o.ctx = ctx

	if err := run(o, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spcube:", err)
		return exitCode(err)
	}
	return 0
}

// exitCode maps a run error to the process exit status: 2 for usage errors
// (matching flag.ExitOnError), 1 for everything else.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// usageError marks an error as the caller's fault (a bad flag value rather
// than a failure while computing), mapping it to exit code 2.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// options carries one invocation's parameters (the parsed flags).
type options struct {
	in, out          string
	aggName, algName string
	workers, par     int
	seed             int64
	minSup           int
	stats            bool
	faults           string
	maxAttempts      int
	specSlack        float64
	taskTimeout      float64
	traceFile        string
	metricsFile      string
	deltaFile        string
	deltaDeleteFile  string
	rebuildThr       float64
	spillBudget      int64
	spillDir         string
	spillCodec       string
	mergeFanIn       int
	pprofAddr        string
	backend          string
	workerCmd        string
	ctx              context.Context
}

func run(o options, stderr io.Writer) error {
	if o.pprofAddr != "" {
		srv, err := obs.Start(o.pprofAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "spcube: profiling endpoint on http://%s/debug/pprof/\n", srv.Addr)
	}
	if o.deltaFile != "" || o.deltaDeleteFile != "" {
		return runDelta(o, stderr)
	}
	aggFn, err := spcube.AggByName(o.aggName)
	if err != nil {
		return usageError{err}
	}
	alg, err := spcube.AlgByName(o.algName)
	if err != nil {
		return usageError{err}
	}

	var r io.Reader = os.Stdin
	if o.in != "" {
		f, err := os.Open(o.in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rel, err := readCSV(r)
	if err != nil {
		return err
	}

	opts := []spcube.Option{
		spcube.Aggregate(aggFn),
		spcube.Algorithm(alg),
		spcube.Workers(o.workers),
		spcube.Parallelism(o.par),
		spcube.Seed(o.seed),
		spcube.MinSupport(o.minSup),
		spcube.Faults(o.faults),
		spcube.MaxAttempts(o.maxAttempts),
		spcube.SpeculativeSlack(o.specSlack),
		spcube.TaskTimeout(o.taskTimeout),
		spcube.SpillBudget(o.spillBudget),
		spcube.SpillDir(o.spillDir),
		spcube.SpillCodec(o.spillCodec),
		spcube.MergeFanIn(o.mergeFanIn),
		spcube.Backend(o.backend),
		spcube.Context(o.ctx),
	}
	if o.workerCmd != "" {
		opts = append(opts, spcube.WorkerCommand(strings.Fields(o.workerCmd)...))
	}
	if o.traceFile != "" {
		tf, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		defer tf.Close()
		opts = append(opts, spcube.Trace(tf))
	}

	c, err := spcube.Compute(rel, opts...)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeCSV(w, rel, c, o.aggName); err != nil {
		return err
	}

	if o.metricsFile != "" {
		data, err := c.MetricsJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.metricsFile, data, 0o644); err != nil {
			return err
		}
	}

	if o.stats {
		st := c.Stats()
		fmt.Fprintf(stderr,
			"%s: %d rows -> %d c-groups | %d rounds, %.1f simulated s (%.2fs wall), %d intermediate records (%d B)",
			st.Algorithm, rel.NumRows(), c.NumGroups(), st.Rounds, st.SimSeconds, st.WallSeconds,
			st.ShuffleRecords, st.ShuffleBytes)
		if st.SketchBytes > 0 {
			fmt.Fprintf(stderr, " | sketch %d B, %d skewed groups", st.SketchBytes, st.SkewedGroups)
		}
		if st.Spills > 0 {
			fmt.Fprintf(stderr, " | %d spills (%d B, %d B on disk)", st.Spills, st.SpillBytes, st.CompressedSpillBytes)
			if st.MergePasses > 0 {
				fmt.Fprintf(stderr, ", %d merge passes", st.MergePasses)
			}
		}
		if st.Retries > 0 {
			fmt.Fprintf(stderr, " | %d task retries (%d B wasted, %.2fs retry wall)",
				st.Retries, st.WastedBytes, st.RetryWallSeconds)
		}
		if st.MapReexecutions > 0 {
			fmt.Fprintf(stderr, " | %d map re-executions (%d fetch failures)",
				st.MapReexecutions, st.FetchFailures)
		}
		if st.SpeculativeLaunched > 0 {
			fmt.Fprintf(stderr, " | %d speculative attempts (won %d, killed %d)",
				st.SpeculativeLaunched, st.SpeculativeWon, st.SpeculativeKilled)
		}
		fmt.Fprintln(stderr)
	}
	return nil
}

// runDelta is the incremental-maintenance batch mode: build the base cube
// through the delta maintainer (cycle 0), apply the -delta / -delta-delete
// rows as one maintenance batch, and emit the maintained cube.
func runDelta(o options, stderr io.Writer) error {
	aggFn, err := agg.ByName(o.aggName)
	if err != nil {
		return usageError{err}
	}
	plan, err := mr.ParseFaultPlan(o.faults)
	if err != nil {
		return usageError{err}
	}

	if o.in == "" {
		return usageError{fmt.Errorf("-delta mode needs -in (the base relation cannot come from stdin alongside the batch)")}
	}
	if o.backend == "proc" {
		// Maintenance jobs are small and frequent — per-job worker-process
		// spawn costs dwarf the work (see delta.Config.Context).
		fmt.Fprintln(stderr, "spcube: -backend proc is ignored in delta mode; maintenance engines run the local backend")
	}
	rel, schema, err := readCSVRel(o.in)
	if err != nil {
		return err
	}

	cfg := delta.Config{
		Algorithm:        o.algName,
		Agg:              aggFn,
		MinSup:           o.minSup,
		Workers:          o.workers,
		Parallelism:      o.par,
		Seed:             o.seed,
		Faults:           plan,
		MaxAttempts:      o.maxAttempts,
		SpeculativeSlack: o.specSlack,
		TaskTimeout:      o.taskTimeout,
		SpillBudgetBytes: o.spillBudget,
		SpillDir:         o.spillDir,
		SpillCodec:       o.spillCodec,
		MergeFanIn:       o.mergeFanIn,
		RebuildThreshold: o.rebuildThr,
		Context:          o.ctx,
	}
	if o.traceFile != "" {
		tf, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		defer tf.Close()
		cfg.Tracer = mr.NewJSONLTracer(tf)
	}

	maint, err := delta.New(rel, cfg)
	if err != nil {
		return err
	}
	appends, err := readDeltaRows(o.deltaFile, schema)
	if err != nil {
		return err
	}
	deletes, err := readDeltaRows(o.deltaDeleteFile, schema)
	if err != nil {
		return err
	}
	rnd, err := maint.ApplyStrings(appends, deletes)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeResultCSV(w, maint.Relation(), maint.Result(), o.aggName); err != nil {
		return err
	}
	if o.metricsFile != "" {
		mf, err := os.Create(o.metricsFile)
		if err != nil {
			return err
		}
		defer mf.Close()
		metrics := maint.Metrics()
		if err := mr.ExportMetrics(mf, &metrics); err != nil {
			return err
		}
	}
	if o.stats {
		changes := "full cube"
		if rnd.Changes != nil {
			changes = fmt.Sprintf("%d changed groups", len(rnd.Changes))
		}
		fmt.Fprintf(stderr,
			"%s+delta: %d rows -> %d c-groups | cycle %d %s (%s, drift %.3f): +%d/-%d tuples, %s\n",
			o.algName, maint.N(), maint.Result().Len(), rnd.Round, rnd.Mode, rnd.Reason,
			rnd.Drift, rnd.Appended, rnd.Deleted, changes)
	}
	return nil
}

// readCSVRel reads the spcube CSV shape into an internal dictionary-encoded
// relation, returning the header too (delta files must match it).
func readCSVRel(path string) (*relation.Relation, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: reading header: %w", path, err)
	}
	if len(header) < 2 {
		return nil, nil, fmt.Errorf("%s: need at least one dimension column and a measure column, got %d columns", path, len(header))
	}
	d := len(header) - 1
	if d > spcube.MaxDims {
		return nil, nil, fmt.Errorf("%s: %d dimensions exceed the supported maximum %d", path, d, spcube.MaxDims)
	}
	headerCopy := append([]string(nil), header...)
	rel := relation.New(headerCopy[:d], headerCopy[d])
	dims := make([]string, d)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		line++
		copy(dims, rec[:d])
		m, err := strconv.ParseInt(rec[d], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s line %d: measure %q is not an integer: %w", path, line, rec[d], err)
		}
		rel.AppendStrings(dims, m)
	}
	if rel.N() == 0 {
		return nil, nil, fmt.Errorf("%s: no data rows", path)
	}
	return rel, headerCopy, nil
}

// readDeltaRows reads a maintenance batch file (same CSV shape and header as
// the base input) into string rows; an empty path yields no rows.
func readDeltaRows(path string, schema []string) ([]delta.Row, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: reading header: %w", path, err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("%s: %d columns, base input has %d", path, len(header), len(schema))
	}
	for i := range header {
		if header[i] != schema[i] {
			return nil, fmt.Errorf("%s: column %d is %q, base input has %q", path, i, header[i], schema[i])
		}
	}
	d := len(schema) - 1
	var rows []delta.Row
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		m, err := strconv.ParseInt(rec[d], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: measure %q is not an integer: %w", path, line, rec[d], err)
		}
		rows = append(rows, delta.Row{Dims: append([]string(nil), rec[:d]...), Measure: m})
	}
	return rows, nil
}

// writeResultCSV renders an internal cube result the way writeCSV renders a
// facade cube: one row per c-group, "*" in aggregated-away dimensions, in
// deterministic cuboid-then-values order.
func writeResultCSV(w io.Writer, rel *relation.Relation, res *cube.Result, aggName string) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), rel.Schema.DimNames...), aggName)
	if err := cw.Write(header); err != nil {
		return err
	}
	d := res.D
	type row struct {
		mask   lattice.Mask
		packed []relation.Value
		value  float64
	}
	rows := make([]row, 0, len(res.Groups))
	for key, v := range res.Groups {
		mask, packed, err := relation.DecodeGroupKey(key)
		if err != nil {
			return err
		}
		rows = append(rows, row{lattice.Mask(mask), packed, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].mask != rows[j].mask {
			return lattice.BFSLess(rows[i].mask, rows[j].mask)
		}
		return relation.ComparePacked(rows[i].packed, rows[j].packed) < 0
	})
	out := make([]string, d+1)
	for _, r := range rows {
		j := 0
		for i := 0; i < d; i++ {
			if !r.mask.Has(i) {
				out[i] = "*"
				continue
			}
			if s, ok := rel.Dict.Decode(i, r.packed[j]); ok {
				out[i] = s
			} else {
				out[i] = strconv.FormatInt(int64(r.packed[j]), 10)
			}
			j++
		}
		out[d] = strconv.FormatFloat(r.value, 'g', -1, 64)
		if err := cw.Write(out); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func readCSV(r io.Reader) (*spcube.Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("need at least one dimension column and a measure column, got %d columns", len(header))
	}
	d := len(header) - 1
	if d > spcube.MaxDims {
		return nil, fmt.Errorf("%d dimensions exceed the supported maximum %d", d, spcube.MaxDims)
	}
	dimNames := append([]string(nil), header[:d]...)
	rel := spcube.NewRelation(dimNames, header[d])
	dims := make([]string, d)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		copy(dims, rec[:d])
		m, err := strconv.ParseInt(rec[d], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: measure %q is not an integer: %w", line, rec[d], err)
		}
		rel.AddRow(dims, m)
	}
	if rel.NumRows() == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return rel, nil
}

func writeCSV(w io.Writer, rel *spcube.Relation, c *spcube.Cube, aggName string) error {
	cw := csv.NewWriter(w)
	header := append(rel.DimNames(), aggName)
	if err := cw.Write(header); err != nil {
		return err
	}
	var werr error
	c.Groups(func(g spcube.Group) {
		if werr != nil {
			return
		}
		row := append(append([]string(nil), g.Dims...), strconv.FormatFloat(g.Value, 'g', -1, 64))
		werr = cw.Write(row)
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}
