// Command gendata generates the paper's evaluation datasets as CSV, ready
// to be piped into cmd/spcube or used to reproduce experiments elsewhere.
//
// Usage:
//
//	gendata -dataset wiki -n 100000 -o wiki.csv
//	gendata -dataset binomial -n 50000 -p 0.4 -seed 7
//
// Datasets: binomial (gen-binomial, -p sets the skew probability), zipf
// (gen-zipf), wiki (Wikipedia-traffic fingerprint), usagov (USAGOV
// fingerprint, 15 dimensions), uniform, retail (the running example).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/relation"
)

func main() {
	var (
		dataset = flag.String("dataset", "retail", "binomial, zipf, wiki, usagov, uniform, retail")
		n       = flag.Int("n", 10_000, "number of rows")
		p       = flag.Float64("p", 0.1, "skew probability (binomial only)")
		d       = flag.Int("d", 4, "dimensions (binomial/uniform only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	if err := run(*dataset, *n, *p, *d, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(dataset string, n int, p float64, d int, seed int64, out string) error {
	var rel *relation.Relation
	switch dataset {
	case "binomial":
		rel = data.GenBinomial(n, d, p, seed)
	case "uniform":
		rel = data.Uniform(n, d, 1<<30, seed)
	default:
		gen, err := data.ByName(dataset)
		if err != nil {
			return err
		}
		rel = gen(n, seed)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	return writeCSV(w, rel)
}

func writeCSV(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append(append([]string(nil), rel.Schema.DimNames...), rel.Schema.MeasureName)); err != nil {
		return err
	}
	row := make([]string, rel.D()+1)
	for _, t := range rel.Tuples {
		for i, v := range t.Dims {
			row[i] = rel.DimString(i, v)
		}
		row[rel.D()] = strconv.FormatInt(t.Measure, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
