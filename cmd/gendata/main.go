// Command gendata generates the paper's evaluation datasets as CSV, ready
// to be piped into cmd/spcube or used to reproduce experiments elsewhere.
//
// Usage:
//
//	gendata -dataset wiki -n 100000 -o wiki.csv
//	gendata -dataset binomial -n 50000 -p 0.4 -seed 7
//
// Datasets: binomial (gen-binomial, -p sets the skew probability), zipf
// (gen-zipf), wiki (Wikipedia-traffic fingerprint), usagov (USAGOV
// fingerprint, 15 dimensions), uniform, retail (the running example).
//
// Rows are produced one at a time and written as they are generated —
// memory stays constant no matter how large -n is, so gendata can emit
// datasets far bigger than RAM.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/spcube/spcube/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "retail", "binomial, zipf, wiki, usagov, uniform, retail")
		n       = flag.Int("n", 10_000, "number of rows")
		p       = flag.Float64("p", 0.1, "skew probability (binomial only)")
		d       = flag.Int("d", 4, "dimensions (binomial/uniform only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	if err := run(*dataset, *n, *p, *d, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(dataset string, n int, p float64, d int, seed int64, out string) error {
	s, err := data.StreamByName(dataset, n, d, p, seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	return writeCSV(w, s)
}

// writeCSV streams the dataset row by row: one reused row buffer, nothing
// materialized.
func writeCSV(w io.Writer, s *data.Stream) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(s.Header); err != nil {
		return err
	}
	row := make([]string, len(s.Header))
	for s.Next(row) {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
