package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/data"
)

func TestRunDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, ds := range []string{"binomial", "zipf", "wiki", "usagov", "uniform", "retail"} {
		out := filepath.Join(dir, ds+".csv")
		if err := run(ds, 200, 0.3, 4, 1, out); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 201 {
			t.Errorf("%s: %d lines, want 201", ds, len(lines))
		}
		cols := len(strings.Split(lines[0], ","))
		for i, l := range lines {
			if len(strings.Split(l, ",")) != cols {
				t.Fatalf("%s: ragged row %d", ds, i)
			}
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 10, 0, 4, 1, ""); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := run("wiki", 100, 0, 4, 42, a); err != nil {
		t.Fatal(err)
	}
	if err := run("wiki", 100, 0, 4, 42, b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("generator output not deterministic")
	}
}

// heapProbe samples live heap while the CSV stream flows through it — the
// probe that catches any return to materialize-then-write behavior, which
// would hold the whole dataset live during the write.
type heapProbe struct {
	sinceGC int
	peak    uint64
}

func (h *heapProbe) Write(p []byte) (int, error) {
	h.sinceGC += len(p)
	if h.sinceGC >= 4<<20 {
		h.sinceGC = 0
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	return len(p), nil
}

// TestWriteCSVMemoryBounded pins gendata's streaming contract: emitting a
// dataset holds O(1) memory, not O(n). 400k 15-dimension usagov rows
// materialized would keep tens of megabytes live through the write; the
// streamed path must stay under a far smaller ceiling at every sample.
func TestWriteCSVMemoryBounded(t *testing.T) {
	s, err := data.StreamByName("usagov", 400_000, 4, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	probe := &heapProbe{}
	if err := writeCSV(probe, s); err != nil {
		t.Fatal(err)
	}
	if probe.peak == 0 {
		t.Fatal("probe never sampled: output smaller than expected")
	}
	// Allow generous slack over the baseline for the runtime's own heap;
	// a materialized 400k-row relation would blow far past this.
	const limit = 16 << 20
	if probe.peak > base+limit {
		t.Errorf("peak live heap %d B over a %d B baseline: dataset is being materialized", probe.peak, base)
	}
}
