package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, ds := range []string{"binomial", "zipf", "wiki", "usagov", "uniform", "retail"} {
		out := filepath.Join(dir, ds+".csv")
		if err := run(ds, 200, 0.3, 4, 1, out); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 201 {
			t.Errorf("%s: %d lines, want 201", ds, len(lines))
		}
		cols := len(strings.Split(lines[0], ","))
		for i, l := range lines {
			if len(strings.Split(l, ",")) != cols {
				t.Fatalf("%s: ragged row %d", ds, i)
			}
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 10, 0, 4, 1, ""); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := run("wiki", 100, 0, 4, 42, a); err != nil {
		t.Fatal(err)
	}
	if err := run("wiki", 100, 0, 4, 42, b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("generator output not deterministic")
	}
}
