// Weblogs: cube over a synthetic click-log in the style of the paper's
// USAGOV dataset — a wide relation where only a subset of the attributes is
// cubed, with naturally skewed traffic (one country and one browser
// dominate). Demonstrates iceberg-style post-filtering of a cuboid and
// inspection of the skew statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/spcube/spcube"
)

type pick struct {
	val    string
	weight float64
}

func draw(rng *rand.Rand, head []pick, tail func() string) string {
	u := rng.Float64()
	acc := 0.0
	for _, p := range head {
		acc += p.weight
		if u < acc {
			return p.val
		}
	}
	return tail()
}

func main() {
	const n = 50_000
	rng := rand.New(rand.NewSource(11))

	countries := []pick{{"US", 0.47}, {"GB", 0.09}, {"CA", 0.07}, {"DE", 0.04}}
	browsers := []pick{{"Chrome", 0.33}, {"Firefox", 0.24}, {"IE", 0.17}, {"Safari", 0.09}}
	oses := []pick{{"Windows", 0.52}, {"macOS", 0.18}, {"Linux", 0.11}}

	rel := spcube.NewRelation([]string{"country", "browser", "os", "domain"}, "clicks")
	for i := 0; i < n; i++ {
		rel.AddRow([]string{
			draw(rng, countries, func() string { return fmt.Sprintf("cc%02d", rng.Intn(150)) }),
			draw(rng, browsers, func() string { return fmt.Sprintf("ua%02d", rng.Intn(40)) }),
			draw(rng, oses, func() string { return fmt.Sprintf("os%02d", rng.Intn(20)) }),
			fmt.Sprintf("site-%05d.gov", rng.Intn(n/4)),
		}, 1)
	}

	c, err := spcube.Compute(rel,
		spcube.Aggregate(spcube.Count),
		spcube.Workers(16),
		spcube.Seed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := c.Stats()
	fmt.Printf("cubed %d log lines into %d c-groups (%d MapReduce rounds)\n",
		rel.NumRows(), c.NumGroups(), st.Rounds)
	fmt.Printf("skew: %d skewed c-groups found by the SP-Sketch (%d bytes, built from %d samples)\n\n",
		st.SkewedGroups, st.SketchBytes, st.SampleTuples)

	// Iceberg query: (country, browser) combinations with at least 2% of
	// all traffic. The cube is already materialized, so this is a scan of
	// one cuboid.
	threshold := float64(n) * 0.02
	fmt.Printf("country x browser combinations above %.0f clicks:\n", threshold)
	combos, err := c.Cuboid("country", "browser")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(combos, func(i, j int) bool { return combos[i].Value > combos[j].Value })
	for _, g := range combos {
		if g.Value < threshold {
			break
		}
		fmt.Printf("  %-4s %-8s %8.0f\n", g.Dims[0], g.Dims[1], g.Value)
	}

	// Drill from a skewed slice down to a fine group.
	us, _ := c.Value("US", "*", "*", "*")
	usChrome, _ := c.Value("US", "Chrome", "*", "*")
	usChromeWin, _ := c.Value("US", "Chrome", "Windows", "*")
	fmt.Printf("\ndrill-down: US=%.0f -> US/Chrome=%.0f -> US/Chrome/Windows=%.0f\n",
		us, usChrome, usChromeWin)

	fmt.Printf("\nintermediate traffic: %d records, %.1f per input row (naive would ship %d per row)\n",
		st.ShuffleRecords, float64(st.ShuffleRecords)/float64(n), 1<<rel.NumDims())
}
