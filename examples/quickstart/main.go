// Quickstart: build a tiny sales relation, compute its data cube with
// SP-Cube, and query a few c-groups — the running example of the paper's
// introduction.
package main

import (
	"fmt"
	"log"

	"github.com/spcube/spcube"
)

func main() {
	rel := spcube.NewRelation([]string{"name", "city", "year"}, "sales")
	rows := []struct {
		name, city, year string
		sales            int64
	}{
		{"laptop", "Rome", "2012", 2000},
		{"laptop", "Paris", "2012", 1500},
		{"laptop", "Rome", "2013", 900},
		{"printer", "Rome", "2013", 300},
		{"printer", "Paris", "2012", 250},
		{"keyboard", "Paris", "2013", 120},
		{"keyboard", "Rome", "2012", 180},
	}
	for _, r := range rows {
		rel.AddRow([]string{r.name, r.city, r.year}, r.sales)
	}

	c, err := spcube.Compute(rel,
		spcube.Aggregate(spcube.Sum),
		spcube.Workers(4),
		spcube.Seed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cube has %d c-groups across %d cuboids\n\n", c.NumGroups(), 1<<rel.NumDims())

	// Point lookups: "*" means the dimension is aggregated away.
	queries := [][]string{
		{"*", "*", "*"},            // total sales
		{"laptop", "*", "*"},       // all laptop sales
		{"laptop", "*", "2012"},    // laptop sales in 2012
		{"*", "Rome", "*"},         // everything sold in Rome
		{"laptop", "Rome", "2012"}, // the finest granularity
	}
	for _, q := range queries {
		v, ok := c.Value(q...)
		fmt.Printf("sales(%s,%s,%s) = %v (found=%v)\n", q[0], q[1], q[2], v, ok)
	}

	// Whole cuboids: group-by name and year.
	fmt.Println("\nsales by (name, year):")
	groups, err := c.Cuboid("name", "year")
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range groups {
		fmt.Printf("  (%s, %s, %s) -> %v\n", g.Dims[0], g.Dims[1], g.Dims[2], g.Value)
	}

	st := c.Stats()
	fmt.Printf("\nexecuted %d MapReduce rounds, %d intermediate records (%d bytes), sketch %d bytes\n",
		st.Rounds, st.ShuffleRecords, st.ShuffleBytes, st.SketchBytes)
}
