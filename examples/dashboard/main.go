// Dashboard: build several aggregates of the same relation in one shot
// with ComputeSet — the SP-Sketch is constructed once and reused for every
// aggregate (§4 of the paper: the sketch depends only on the relation) —
// then assemble a small sales dashboard: totals, averages, volatility
// (stddev), and an iceberg view of the heavy hitters.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/spcube/spcube"
)

func main() {
	const n = 40_000
	rng := rand.New(rand.NewSource(99))
	regions := []string{"EMEA", "AMER", "APAC"}
	products := []string{"basic", "plus", "pro", "enterprise"}
	rel := spcube.NewRelation([]string{"region", "product", "quarter"}, "revenue")
	for i := 0; i < n; i++ {
		region := regions[rng.Intn(len(regions))]
		product := products[rng.Intn(len(products))]
		quarter := fmt.Sprintf("Q%d", 1+rng.Intn(4))
		base := int64(100 * (1 + rng.Intn(len(products))))
		if product == "enterprise" {
			base *= int64(5 + rng.Intn(20)) // lumpy big deals
		}
		rel.AddRow([]string{region, product, quarter}, base)
	}

	cubes, err := spcube.ComputeSet(rel,
		[]spcube.Agg{spcube.Sum, spcube.Count, spcube.Avg, spcube.Stddev},
		spcube.Workers(12),
		spcube.Seed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	sum, count, avg, vol := cubes[0], cubes[1], cubes[2], cubes[3]

	// The sketch round ran once: the first cube paid for it, the rest
	// reused it.
	fmt.Printf("4 aggregates over %d rows; rounds per cube: %d, %d, %d, %d (sketch built once, %d bytes)\n\n",
		n, sum.Stats().Rounds, count.Stats().Rounds, avg.Stats().Rounds, vol.Stats().Rounds,
		sum.Stats().SketchBytes)

	fmt.Println("revenue by region (total | deals | avg deal | stddev):")
	byRegion, err := sum.Cuboid("region")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(byRegion, func(i, j int) bool { return byRegion[i].Value > byRegion[j].Value })
	for _, g := range byRegion {
		c, _ := count.Value(g.Dims...)
		a, _ := avg.Value(g.Dims...)
		s, _ := vol.Value(g.Dims...)
		fmt.Printf("  %-5s %12.0f | %6.0f | %8.1f | %8.1f\n", g.Dims[0], g.Value, c, a, s)
	}

	// Volatility outliers: enterprise deals swing hardest.
	fmt.Println("\ndeal-size volatility by product:")
	byProduct, err := vol.Cuboid("product")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(byProduct, func(i, j int) bool { return byProduct[i].Value > byProduct[j].Value })
	for _, g := range byProduct {
		fmt.Printf("  %-10s stddev %9.1f\n", g.Dims[1], g.Value)
	}

	// Iceberg view: only (region, product, quarter) cells with real volume.
	heavy, err := spcube.Compute(rel,
		spcube.Aggregate(spcube.Sum),
		spcube.Workers(12),
		spcube.Seed(99),
		spcube.MinSupport(n/20), // ≥5% of all deals
	)
	if err != nil {
		log.Fatal(err)
	}
	full, err := spcube.Compute(rel, spcube.Aggregate(spcube.Sum), spcube.Workers(12), spcube.Seed(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niceberg cube at min-support %d rows: %d groups (full cube: %d)\n",
		n/20, heavy.NumGroups(), full.NumGroups())
}
