// Retail: the analyst scenario from the paper's introduction at a more
// realistic size — products sold across European cities over several years,
// with a heavy-tailed product mix (a few products dominate sales). The
// example computes several aggregates from the same relation, drills into
// cuboids to surface trends and anomalies, and shows the SP-Sketch's view
// of the skew.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/spcube/spcube"
)

func buildSales(n int, seed int64) *spcube.Relation {
	rng := rand.New(rand.NewSource(seed))
	products := []string{
		"laptop", "keyboard", "printer", "television", "mouse", "monitor",
		"tablet", "phone", "camera", "speaker", "toaster", "air-conditioner",
	}
	cities := []string{
		"Rome", "Paris", "London", "Berlin", "Madrid",
		"Amsterdam", "Vienna", "Prague", "Lisbon", "Athens",
	}
	// Heavy-tailed product popularity: laptops sell an order of magnitude
	// more than toasters — the skew the paper's example warns about ("if
	// an extremely large number of laptops were sold in 2012...").
	productPick := rand.NewZipf(rng, 1.3, 1, uint64(len(products)-1))

	rel := spcube.NewRelation([]string{"name", "city", "year"}, "sales")
	for i := 0; i < n; i++ {
		product := products[productPick.Uint64()]
		city := cities[rng.Intn(len(cities))]
		year := fmt.Sprintf("%d", 2008+rng.Intn(8))
		units := int64(1 + rng.Intn(500))
		if product == "laptop" && year == "2012" {
			units *= 3 // the 2012 laptop boom
		}
		rel.AddRow([]string{product, city, year}, units)
	}
	return rel
}

func main() {
	rel := buildSales(60_000, 7)
	fmt.Printf("relation: %d sales records over (name, city, year)\n\n", rel.NumRows())

	// Total units per group with sum, and market breadth with count.
	sums, err := spcube.Compute(rel, spcube.Aggregate(spcube.Sum), spcube.Workers(10), spcube.Seed(7))
	if err != nil {
		log.Fatal(err)
	}
	counts, err := spcube.Compute(rel, spcube.Aggregate(spcube.Count), spcube.Workers(10), spcube.Seed(7))
	if err != nil {
		log.Fatal(err)
	}

	total, _ := sums.Value("*", "*", "*")
	fmt.Printf("total units sold: %.0f across %d c-groups\n\n", total, sums.NumGroups())

	// Trend: yearly laptop sales — the skewed product.
	fmt.Println("laptop units by year:")
	years, err := sums.Cuboid("name", "year")
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range years {
		if g.Dims[0] == "laptop" {
			fmt.Printf("  %s: %8.0f\n", g.Dims[2], g.Value)
		}
	}

	// Anomaly hunting: average units per transaction by product; the 2012
	// laptop boost shows up as an outlier.
	fmt.Println("\ntop products by average units per sale in 2012:")
	avgs, err := spcube.Compute(rel, spcube.Aggregate(spcube.Avg), spcube.Workers(10), spcube.Seed(7))
	if err != nil {
		log.Fatal(err)
	}
	byProduct, err := avgs.Cuboid("name", "year")
	if err != nil {
		log.Fatal(err)
	}
	var in2012 []spcube.Group
	for _, g := range byProduct {
		if g.Dims[2] == "2012" {
			in2012 = append(in2012, g)
		}
	}
	sort.Slice(in2012, func(i, j int) bool { return in2012[i].Value > in2012[j].Value })
	for i, g := range in2012 {
		if i == 5 {
			break
		}
		fmt.Printf("  %-16s %7.1f units/sale\n", g.Dims[0], g.Value)
	}

	// City league table by number of transactions.
	fmt.Println("\ntransactions by city:")
	cities, err := counts.Cuboid("city")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(cities, func(i, j int) bool { return cities[i].Value > cities[j].Value })
	for _, g := range cities[:5] {
		fmt.Printf("  %-10s %6.0f\n", g.Dims[1], g.Value)
	}

	st := sums.Stats()
	fmt.Printf("\nSP-Cube stats: %d rounds, %d skewed c-groups detected, sketch %d bytes (input ~%d KB)\n",
		st.Rounds, st.SkewedGroups, st.SketchBytes, rel.NumRows()*20/1024)
}
