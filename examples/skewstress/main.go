// Skewstress: side-by-side comparison of SP-Cube against the naive cube,
// MR-Cube (Pig) and the Hive model as the input's skew grows — a
// miniature, public-API version of the paper's Figure 6 experiment.
// With probability p a row is one of a few identical hot patterns; the rest
// is near-distinct. SP-Cube's simulated time stays flat while the baselines
// react to the distribution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/spcube/spcube"
)

func genSkewed(n int, p float64, seed int64) *spcube.Relation {
	rng := rand.New(rand.NewSource(seed))
	rel := spcube.NewRelation([]string{"a", "b", "c", "d"}, "m")
	dims := make([]int32, 4)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			hot := int32(1 + rng.Intn(3))
			for j := range dims {
				dims[j] = hot
			}
		} else {
			for j := range dims {
				dims[j] = rng.Int31()
			}
		}
		rel.AddRowInts(dims, 1)
	}
	return rel
}

func main() {
	const n = 20_000
	algs := []spcube.Alg{spcube.AlgSPCube, spcube.AlgNaive, spcube.AlgMRCube, spcube.AlgHive}

	fmt.Printf("%-6s", "p")
	for _, a := range algs {
		fmt.Printf("  %18s", a)
	}
	fmt.Println("\n      (simulated seconds | intermediate MB; x = did not finish)")

	for _, p := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		rel := genSkewed(n, p, 42)
		fmt.Printf("%-6.1f", p)
		var ref *spcube.Cube
		for _, alg := range algs {
			c, err := spcube.Compute(rel,
				spcube.Algorithm(alg),
				spcube.Workers(10),
				spcube.Seed(42),
			)
			if err != nil {
				fmt.Printf("  %18s", "x")
				continue
			}
			st := c.Stats()
			fmt.Printf("  %8.1fs %6.1fMB", st.SimSeconds, float64(st.ShuffleBytes)/1e6)
			if ref == nil {
				ref = c
			} else if c.NumGroups() != ref.NumGroups() {
				log.Fatalf("%v disagrees: %d groups vs %d", alg, c.NumGroups(), ref.NumGroups())
			}
		}
		fmt.Println()
	}

	fmt.Println("\nall completing algorithms produced identical cubes")
}
