package spcube

// One benchmark per figure of the paper's evaluation (§6), plus
// micro-benchmarks of the core building blocks. The figure benchmarks run
// the same harness as cmd/spbench at a reduced scale and report the series'
// headline numbers as custom metrics, so `go test -bench=.` regenerates the
// paper's evaluation in miniature; run `go run ./cmd/spbench` for the
// full-scale sweeps.

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/spcube/spcube/internal/agg"
	"github.com/spcube/spcube/internal/algo/hivecube"
	"github.com/spcube/spcube/internal/algo/mrcube"
	"github.com/spcube/spcube/internal/algo/naive"
	spalgo "github.com/spcube/spcube/internal/algo/spcube"
	"github.com/spcube/spcube/internal/bench"
	"github.com/spcube/spcube/internal/buc"
	"github.com/spcube/spcube/internal/cube"
	"github.com/spcube/spcube/internal/data"
	"github.com/spcube/spcube/internal/lattice"
	"github.com/spcube/spcube/internal/mr"
	"github.com/spcube/spcube/internal/relation"
	"github.com/spcube/spcube/internal/sketch"
)

// benchScale keeps `go test -bench` runs quick; cmd/spbench uses 1.0.
const benchScale = 0.05

// reportFigure runs one paper experiment and reports, per series, the
// final (largest-x) y value as a custom metric.
func reportFigure(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Workers: 20, Seed: 2016, Scale: benchScale}
	var figs []bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = bench.ByID(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			last := s.Points[len(s.Points)-1]
			unit := metricUnit(f.ID + "/" + s.Name)
			if last.DNF {
				b.ReportMetric(-1, unit)
				continue
			}
			b.ReportMetric(last.Y, unit)
		}
	}
}

// metricUnit sanitizes a series label into a ReportMetric unit (no
// whitespace allowed).
func metricUnit(label string) string {
	label = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t':
			return '_'
		case '(', ')':
			return -1
		}
		return r
	}, label)
	return label
}

// BenchmarkFig4Wikipedia regenerates Figure 4 (Wikipedia Traffic
// Statistics): running time, reduce time, and map output vs data size.
func BenchmarkFig4Wikipedia(b *testing.B) { reportFigure(b, "fig4") }

// BenchmarkFig5USAGov regenerates Figure 5 (USAGOV): running time, map
// time, and SP-Sketch size vs data size.
func BenchmarkFig5USAGov(b *testing.B) { reportFigure(b, "fig5") }

// BenchmarkFig6Skewness regenerates Figure 6 (gen-binomial): running time,
// map output, and sketch size vs the skew probability p.
func BenchmarkFig6Skewness(b *testing.B) { reportFigure(b, "fig6") }

// BenchmarkFig7Zipf regenerates Figure 7 (gen-zipf): running time, average
// reduce time, and map output vs data size.
func BenchmarkFig7Zipf(b *testing.B) { reportFigure(b, "fig7") }

// BenchmarkFig8BinomialSize regenerates Figure 8 (gen-binomial at p=0.1):
// running time, average map time, and map output vs data size.
func BenchmarkFig8BinomialSize(b *testing.B) { reportFigure(b, "fig8") }

// BenchmarkLoadBalance regenerates the §6.2 reducer-balance claim.
func BenchmarkLoadBalance(b *testing.B) { reportFigure(b, "balance") }

// BenchmarkTrafficBounds regenerates the §5.2 intermediate-data bounds
// (Proposition 5.5 and Theorem 5.3).
func BenchmarkTrafficBounds(b *testing.B) { reportFigure(b, "traffic") }

// BenchmarkAblation quantifies SP-Cube's two design choices (skew
// pre-aggregation, factorized ancestors) by disabling each.
func BenchmarkAblation(b *testing.B) { reportFigure(b, "ablation") }

// BenchmarkRounds quantifies the §7 objection to top-down multi-round
// cubes (parallel Pipesort) against SP-Cube's fixed two rounds.
func BenchmarkRounds(b *testing.B) { reportFigure(b, "rounds") }

// BenchmarkSketchQuality regenerates the SP-Sketch property checks of §4
// (sample size, skew detection recall, sketch size).
func BenchmarkSketchQuality(b *testing.B) { reportFigure(b, "sketch") }

// ---- algorithm micro-benchmarks (fixed workload, wall-clock focused) ----

func benchAlgo(b *testing.B, fn cube.ComputeFunc, rel *relation.Relation) {
	b.Helper()
	b.ReportAllocs()
	var shuffle int64
	var sim float64
	for i := 0; i < b.N; i++ {
		eng := mr.New(mr.Config{Workers: 10, Seed: 1}, nil)
		run, err := fn(eng, rel, cube.Spec{Agg: agg.Count})
		if err != nil {
			b.Fatal(err)
		}
		shuffle = run.Metrics.ShuffleBytes()
		sim = run.Metrics.SimSeconds()
	}
	b.ReportMetric(float64(shuffle), "shuffleB")
	b.ReportMetric(sim, "sim-s")
	b.ReportMetric(float64(rel.N())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkSPCubeWiki(b *testing.B) {
	rel := data.WikiTraffic(20_000, 1)
	benchAlgo(b, spalgo.Compute, rel)
}

func BenchmarkNaiveWiki(b *testing.B) {
	rel := data.WikiTraffic(20_000, 1)
	benchAlgo(b, naive.Compute, rel)
}

func BenchmarkMRCubeWiki(b *testing.B) {
	rel := data.WikiTraffic(20_000, 1)
	benchAlgo(b, mrcube.Compute, rel)
}

func BenchmarkHiveCubeWiki(b *testing.B) {
	rel := data.WikiTraffic(20_000, 1)
	benchAlgo(b, func(e *mr.Engine, r *relation.Relation, s cube.Spec) (*cube.Run, error) {
		return hivecube.ComputeOpts(e, r, s, hivecube.Options{DisableOOM: true})
	}, rel)
}

func BenchmarkSPCubeZipf(b *testing.B) {
	rel := data.GenZipf(20_000, 1)
	benchAlgo(b, spalgo.Compute, rel)
}

func BenchmarkSPCubeBinomialSkewed(b *testing.B) {
	rel := data.GenBinomial(20_000, 4, 0.6, 1)
	benchAlgo(b, spalgo.Compute, rel)
}

// ---- building-block micro-benchmarks ----

func BenchmarkBUCFullCube(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tuples := make([]relation.Tuple, 20_000)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			Dims:    []relation.Value{int32(rng.Intn(50)), int32(rng.Intn(50)), int32(rng.Intn(50)), int32(rng.Intn(50))},
			Measure: 1,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := 0
		buc.Compute(tuples, 4, agg.Count, 1, func(lattice.Mask, []relation.Value, agg.State) { groups++ })
		if groups == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkSketchBuild(b *testing.B) {
	rel := data.WikiTraffic(50_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mr.New(mr.Config{Workers: 20, Seed: 1}, nil)
		built, err := sketch.Build(eng, rel, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(built.EncodedBytes), "sketchB")
		}
	}
}

func BenchmarkGroupKeyEncode(b *testing.B) {
	dims := []relation.Value{1_000_000, 7, 2012, 3}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = relation.EncodeGroupKey(buf, uint32(i)&0xF, dims)
	}
}

func BenchmarkGroupKeyDecode(b *testing.B) {
	key := relation.GroupKey(0b1011, []relation.Value{1_000_000, 7, 2012, 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := relation.DecodeGroupKey(key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatticeWalk(b *testing.B) {
	// The SP-Cube mapper's hot loop: BFS over a 4-d tuple lattice with
	// superset marking.
	order := lattice.BFSOrder(4)
	marks := lattice.NewMarks(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		marks.Reset()
		for _, m := range order {
			if marks.Marked(m) {
				continue
			}
			if m.Level() <= 1 {
				marks.Mark(m)
				continue
			}
			marks.MarkSupersetsIncl(m)
		}
	}
}

func BenchmarkPublicAPI(b *testing.B) {
	rel := NewRelation([]string{"a", "b", "c"}, "m")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5_000; i++ {
		rel.AddRowInts([]int32{rng.Int31n(50), rng.Int31n(50), rng.Int31n(50)}, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Compute(rel, Workers(4), Seed(1))
		if err != nil {
			b.Fatal(err)
		}
		if c.NumGroups() == 0 {
			b.Fatal("empty cube")
		}
	}
}
